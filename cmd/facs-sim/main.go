// Command facs-sim regenerates the paper's evaluation figures and runs
// declarative scenarios (SCENARIOS.md) that take the schemes beyond the
// paper's homogeneous set-up.
//
// Usage:
//
//	facs-sim -fig 10                 # ASCII chart of Fig. 10 to stdout
//	facs-sim -fig 7 -csv fig7.csv    # also write tidy CSV
//	facs-sim -fig all -reps 30       # every figure, 30 seeds per point
//	facs-sim -fig drops              # the QoS (call-dropping) experiment
//	facs-sim -fig adapt-drops        # adaptive bandwidth vs FACS-P vs guard
//	facs-sim -fig adapt-ratio        # the degradation-ratio price it pays
//	facs-sim -fig 10 -workers 16     # shard the sweep over 16 workers
//	facs-sim -fig 10 -surface 33     # precomputed decision surfaces
//	facs-sim -list-scenarios         # the named scenario library
//	facs-sim -scenario flash-crowd   # rank every scheme on a scenario
//	facs-sim -scenario highway -metric drops   # ... on dropped-call %
//	facs-sim -scenario my-city.json  # run your own scenario file
//	facs-sim -leaderboard            # regret-vs-optimal ranking, all ring scenarios
//	facs-sim -leaderboard -gate 1    # ... and fail unless optimal is a floor
//	facs-sim -generate-city > c.json           # emit a synthetic city
//	facs-sim -generate-city -city-radius 18    # ... at ~1000 cells
//	facs-sim -city metro-city                  # one sharded city run
//	facs-sim -city c.json -city-workers 8      # ... across 8 workers
//
// Figures: 7 (FACS vs SCC), 8 (FACS-P by speed), 9 (FACS-P by angle),
// 10 (FACS-P vs FACS), drops (dropped-call percentage, FACS-P vs FACS),
// adapt-drops (dropped-call percentage, adapt/adapt-fuzzy vs FACS-P vs
// guard-channel), adapt-ratio (mean received/requested bandwidth of the
// adaptive schemes), plus the ablation-handoff and ablation-defuzz
// sensitivity studies. The usage string derives the list from
// experiment.FigureIDs, and a test diffs this comment against it.
//
// Scenarios (-scenario, -list-scenarios) are declarative workload
// descriptions — heterogeneous per-cell load and capacity, time-varying
// and bursty arrivals, mobility mixes — documented in SCENARIOS.md. A
// scenario run ranks every scheme (facs, facsp, scc, guard, adapt,
// adapt-fuzzy, optimal, learned) on the same sweep; -metric picks the y
// axis: accepted (acceptance %), drops (dropped-call %), or ratio
// (received/requested bandwidth %). The named library holds flash-crowd,
// stadium-hotspot, highway, diurnal-city and metro-city; -scenario also
// accepts a path to your own JSON file (any argument containing a path
// separator or ending in .json).
//
// -leaderboard ranks every scheme on each embedded ring scenario by the
// weighted drop/block objective J = 10·drop% + block% + degradation
// shortfall (the cost ratio of the value-iteration optimal policy's own
// model) and prints each scheme's regret against that computed optimum.
// -gate S additionally fails the run if any scheme beats the optimal
// policy's objective — or any fixed-allocation scheme beats its drop
// metric — by more than the combined 95% confidence half-widths plus S
// percentage points; CI runs this as the leaderboard job.
//
// City-scale runs (-city, -generate-city) use the multi-cluster topology
// support (scenario schema 2) and the cell-group-sharded engine.
// -generate-city emits a parameterised synthetic city — downtown core,
// suburb band, arterial highways, stadium hotspots, dead zones — as
// scenario JSON on stdout (-city-radius, -city-seed, -city-name). -city
// runs ONE simulation of a scenario (name or file) sharded across
// worker-owned cell groups and prints its call accounting plus simulated
// calls per wall-clock second; -city-scheme picks the admission scheme
// (any per-cell scheme; scc cannot shard), -city-load scales the offered
// traffic, and -city-groups / -city-workers control the split. Workers
// own whole cell groups, so -city-workers above the group count is a
// usage error; the metrics are bit-identical for every worker count.
//
// Sweeps are sharded: every (load, replication) cell runs as an independent
// simulation with a deterministic RNG substream, so -workers changes only
// throughput — the curves are bit-identical for any worker count and seed,
// for figures and scenarios alike. -surface N trades a small, bounded
// quantization error for a much faster admission hot path (see
// EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"facsp/internal/experiment"
	"facsp/internal/hexgrid"
	"facsp/internal/optimal"
	"facsp/internal/plot"
	"facsp/internal/scenario"
	"facsp/internal/simflag"
	"facsp/internal/stats"
	"facsp/internal/traffic"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "facs-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("facs-sim", flag.ContinueOnError)
	var (
		fig      = fs.String("fig", "10", "figure to regenerate: "+figureList()+", or all")
		scen     = fs.String("scenario", "", "run a scenario instead of a figure: "+scenarioList()+", or a path to a scenario JSON file")
		listScen = fs.Bool("list-scenarios", false, "list the named scenarios and exit")
		leader   = fs.Bool("leaderboard", false, "rank every scheme on each embedded ring scenario by the weighted drop/block objective, with regret against the optimal policy")
		gate     = fs.Float64("gate", -1, "with -leaderboard: fail unless the optimal policy is a floor of every ranking within this slack in percentage points (negative: report only)")
		metricID = fs.String("metric", "accepted", "scenario y axis: accepted, drops, ratio")
		loads    = fs.String("loads", "", "comma-separated x axis, e.g. 10,25,50,100 (default: the paper grid)")
		reps     = fs.Int("reps", 20, "replications (seeds) per point")
		seed     = fs.Uint64("seed", 0, "base seed")
		workers  = fs.Int("workers", 0, "parallel shard workers (default GOMAXPROCS; any value yields identical curves)")
		surface  = fs.Int("surface", 0, "run controllers on precomputed decision surfaces with this per-axis resolution (0 = exact inference)")
		csvPath  = fs.String("csv", "", "also write tidy CSV to this path ('-' for stdout)")
		noChart  = fs.Bool("no-chart", false, "suppress the ASCII chart")
		withCI   = fs.Bool("ci", false, "print a per-point table with 95% confidence half-widths")

		genCity     = fs.Bool("generate-city", false, "emit a synthetic-city scenario as JSON on stdout and exit")
		cityRadius  = fs.Int("city-radius", 0, "generator: metro disk radius in cells (0 = default 8; 18 is ~1000 cells)")
		citySeed    = fs.Uint64("city-seed", 0, "generator: layout seed (0 = the default layout)")
		cityName    = fs.String("city-name", "", "generator: scenario name (default city)")
		city        = fs.String("city", "", "run ONE sharded city simulation of this scenario (library name or JSON path)")
		cityScheme  = fs.String("city-scheme", "facsp", "city: admission scheme (per-cell schemes only)")
		cityLoad    = fs.Int("city-load", 8, "city: per-unit-load requesting connections (each cell offers load x its multiplier)")
		cityGroups  = fs.Int("city-groups", 0, "city: cell-group count (0 = topology default); part of the run's identity, not a tuning knob")
		cityWorkers = fs.Int("city-workers", 0, "city: worker goroutines, at most the group count (0 = GOMAXPROCS capped)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	// A figure and a scenario are different experiments; an explicitly
	// requested -fig alongside -scenario must not be silently discarded,
	// and -metric only means something for scenario runs.
	if explicit["fig"] && *scen != "" {
		return fmt.Errorf("-fig and -scenario are mutually exclusive")
	}
	if explicit["metric"] && *scen == "" {
		return fmt.Errorf("-metric applies only to -scenario runs")
	}
	if explicit["gate"] && !*leader {
		return fmt.Errorf("-gate applies only to -leaderboard runs")
	}
	modes := 0
	for _, on := range []bool{explicit["fig"] || *scen != "", *genCity, *city != "", *leader} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		return fmt.Errorf("-generate-city, -city, -leaderboard and figure/scenario sweeps are mutually exclusive")
	}

	if *listScen {
		return printScenarios(os.Stdout)
	}

	if *genCity {
		return generateCity(os.Stdout, *cityName, *cityRadius, *citySeed)
	}

	// Flag validation is shared with cmd/facs-bench (internal/simflag): an
	// invalid -loads/-reps/-workers/-surface fails here as a usage error
	// instead of a panic deep inside a sweep worker.
	opts, err := simflag.SweepOptions(*loads, *reps, *workers, *surface, *seed)
	if err != nil {
		return err
	}

	if *city != "" {
		return runCity(os.Stdout, *city, *cityScheme, *cityLoad, *cityGroups, *cityWorkers, *seed, opts)
	}

	if *leader {
		return runLeaderboards(os.Stdout, opts, *gate)
	}

	if *scen != "" {
		return runScenario(*scen, *metricID, opts, *csvPath, !*noChart, *withCI)
	}

	figures := experiment.Figures()
	var ids []string
	if *fig == "all" {
		ids = experiment.FigureIDs()
	} else {
		if figures[*fig] == nil {
			return fmt.Errorf("unknown figure %q (have %s, all)", *fig, figureList())
		}
		ids = []string{*fig}
	}

	for _, id := range ids {
		curves, err := figures[id](opts)
		if err != nil {
			return err
		}
		title, yLabel := figureChartMeta(id)
		if err := emit(id, title, yLabel, curves, *csvPath, !*noChart, *withCI); err != nil {
			return err
		}
	}
	return nil
}

// figureList returns the known figure identifiers, sorted, for usage and
// error text.
func figureList() string {
	return strings.Join(experiment.FigureIDs(), ", ")
}

// scenarioList returns the named scenarios of the embedded library, for
// usage and error text.
func scenarioList() string {
	return strings.Join(scenario.Names(), ", ")
}

// printScenarios writes the named scenario library with descriptions.
func printScenarios(w io.Writer) error {
	for _, name := range scenario.Names() {
		s, err := scenario.Load(name)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s\n    %s\n", s.Name, s.Description); err != nil {
			return err
		}
	}
	return nil
}

// loadScenarioArg resolves the -scenario argument: a path (anything with a
// path separator or a .json suffix) is read from disk, anything else from
// the embedded library.
func loadScenarioArg(arg string) (*scenario.Scenario, error) {
	if strings.ContainsAny(arg, `/\`) || strings.HasSuffix(arg, ".json") {
		return scenario.FromFile(arg)
	}
	return scenario.Load(arg)
}

// scenarioMetric maps the -metric flag to the experiment metric and its
// chart y label.
func scenarioMetric(id string) (experiment.Metric, string, error) {
	switch id {
	case "accepted":
		return experiment.AcceptedPct, "percentage of accepted calls", nil
	case "drops":
		return experiment.DropPct, "percentage of admitted calls dropped", nil
	case "ratio":
		return experiment.BandwidthRatioPct, "mean received/requested bandwidth (%)", nil
	default:
		return nil, "", fmt.Errorf("unknown metric %q (have accepted, drops, ratio)", id)
	}
}

// generateCity emits a synthetic-city scenario as JSON.
func generateCity(w io.Writer, name string, radius int, seed uint64) error {
	s, err := scenario.GenerateCity(scenario.CityParams{Name: name, MetroRadius: radius, Seed: seed})
	if err != nil {
		return err
	}
	data, err := s.JSON()
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// runCity executes one sharded city simulation and prints its call
// accounting. Unlike the sweep modes, this is a single run: the topology
// is partitioned into cell groups and workers own whole groups, so the
// wall clock drops with -city-workers while every metric stays
// bit-identical.
func runCity(w io.Writer, arg, scheme string, load, groups, workers int, seed uint64, opts experiment.Options) error {
	s, err := loadScenarioArg(arg)
	if err != nil {
		return err
	}
	if err := s.Validate(); err != nil {
		return err
	}
	// Validate the group/worker split at the flag boundary, against the
	// same topology the run will shard (a scenario without a topology
	// section shards its legacy rings disk).
	cfg, err := s.ConfigFor(load, seed)
	if err != nil {
		return err
	}
	topo := cfg.Topology
	if topo == nil {
		topo = hexgrid.DiskTopology(hexgrid.Coord{}, cfg.Rings)
	}
	shard, err := simflag.CityShard(groups, workers, topo)
	if err != nil {
		return err
	}
	resolvedGroups, resolvedWorkers, err := shard.Resolve(topo)
	if err != nil {
		return err
	}

	start := time.Now()
	res, err := experiment.RunCity(s, experiment.CityRun{
		Scheme: scheme, Load: load, Seed: seed, Shard: shard,
	}, opts)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	fmt.Fprintf(w, "city %s: %d cells, %d groups, %d workers, scheme %s, load %d, seed %d\n",
		s.Name, topo.Cells(), resolvedGroups, resolvedWorkers, scheme, load, seed)
	fmt.Fprintf(w, "  new calls        %8d offered, %d accepted (%.1f%%), %d blocked\n",
		res.Requests, res.Accepted, pct(res.Accepted, res.Requests), res.Blocked)
	fmt.Fprintf(w, "  handoffs         %8d attempted, %d accepted (%.1f%%), %d calls dropped\n",
		res.HandoffAttempts, res.HandoffAccepted, pct(res.HandoffAccepted, res.HandoffAttempts), res.Dropped)
	fmt.Fprintf(w, "  call fates       %8d completed, %d left the network\n", res.Completed, res.LeftNetwork)
	for _, class := range traffic.Classes() {
		fmt.Fprintf(w, "  class %-10s %8d offered, %d accepted (%.1f%%)\n",
			class, res.RequestsByClass[class], res.AcceptedByClass[class],
			pct(res.AcceptedByClass[class], res.RequestsByClass[class]))
	}
	fmt.Fprintf(w, "  bandwidth        %12.1f BU*s granted / %.1f BU*s requested (%.1f%%)\n",
		res.BandwidthGranted, res.BandwidthRequested, 100*res.BandwidthRatio())
	fmt.Fprintf(w, "  centre cell      %12.1f BU mean occupancy\n", res.CentreUtilization)
	fmt.Fprintf(w, "  wall clock       %12v  (%.0f simulated calls/s)\n",
		elapsed.Round(time.Millisecond), float64(res.NetworkRequests)/elapsed.Seconds())
	return nil
}

// pct is a safe percentage for report lines.
func pct(part, whole int) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// runLeaderboards ranks every scheme on each embedded ring scenario by
// the weighted drop/block objective and prints the regret table. A
// non-negative gate additionally asserts the optimal policy is a floor of
// every ranking (experiment.GateOptimalFloor); the first violation fails
// the run after all tables have printed.
func runLeaderboards(w io.Writer, opts experiment.Options, gate float64) error {
	var gateErr error
	for _, name := range experiment.RingScenarioNames() {
		s, err := scenario.Load(name)
		if err != nil {
			return err
		}
		lb, err := experiment.RunLeaderboard(s, opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "scenario %s (loads %v, objective J = %d*drop%% + block%% + degradation shortfall)\n",
			lb.Scenario, lb.Loads, optimal.DropWeight)
		fmt.Fprintf(w, "  %-4s %-14s %10s %8s %8s %8s %9s\n",
			"rank", "scheme", "objective", "±95%", "drop%", "±95%", "regret")
		for i, e := range lb.Entries {
			fmt.Fprintf(w, "  %-4d %-14s %10.2f %8.2f %8.2f %8.2f %+9.2f\n",
				i+1, e.ID, e.Objective, e.CI95, e.Drop, e.DropCI95, e.Regret)
		}
		fmt.Fprintln(w)
		if gate >= 0 && gateErr == nil {
			gateErr = lb.GateOptimalFloor(gate)
		}
	}
	if gateErr != nil {
		return gateErr
	}
	if gate >= 0 {
		fmt.Fprintf(w, "gate: optimal is a floor of every leaderboard (slack %g pp)\n", gate)
	}
	return nil
}

// runScenario ranks every scheme on one scenario and emits the result.
func runScenario(arg, metricID string, opts experiment.Options, csvPath string, chart, withCI bool) error {
	s, err := loadScenarioArg(arg)
	if err != nil {
		return err
	}
	metric, yLabel, err := scenarioMetric(metricID)
	if err != nil {
		return err
	}
	curves, err := experiment.RunScenarioMetric(s, metric, opts)
	if err != nil {
		return err
	}
	title := fmt.Sprintf("Scenario %s (%s)", s.Name, metricID)
	return emit(s.Name, title, yLabel, curves, csvPath, chart, withCI)
}

// figureChartMeta returns the chart title and y label for a figure id.
func figureChartMeta(id string) (title, yLabel string) {
	title = "Figure " + id
	yLabel = "percentage of accepted calls"
	switch id {
	case "drops":
		title = "Dropped-call percentage (QoS of on-going connections)"
		yLabel = "percentage of admitted calls dropped"
	case "ablation-handoff":
		title = "Dropped-call percentage (handoff-priority ablation)"
		yLabel = "percentage of admitted calls dropped"
	case "adapt-drops":
		title = "Dropped-call percentage (adaptive bandwidth vs reservation)"
		yLabel = "percentage of admitted calls dropped"
	case "adapt-ratio":
		title = "Degradation ratio (price of adaptive handoff protection)"
		yLabel = "mean received/requested bandwidth (%)"
	}
	return title, yLabel
}

func emit(key, title, yLabel string, curves []experiment.Curve, csvPath string, chart, withCI bool) error {
	series := make([]stats.Series, len(curves))
	for i, c := range curves {
		series[i] = c.Series
	}

	if chart {
		c := plot.Chart{
			Title:  title,
			XLabel: "number of requesting connections",
			YLabel: yLabel,
		}
		if err := c.Render(os.Stdout, series...); err != nil {
			return err
		}
		fmt.Println()
	}

	if withCI {
		for _, c := range curves {
			fmt.Printf("%s\n", c.Name)
			for i, p := range c.Points {
				fmt.Printf("  N=%-4g %6.2f ± %.2f\n", p.X, p.Y, c.CI95[i])
			}
		}
		fmt.Println()
	}

	switch csvPath {
	case "":
		return nil
	case "-":
		return plot.WriteCSV(os.Stdout, series...)
	default:
		path := csvPath
		if len(curves) > 0 && strings.Contains(path, "%s") {
			path = fmt.Sprintf(csvPath, key)
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := plot.WriteCSV(f, series...); err != nil {
			_ = f.Close()
			return err
		}
		return f.Close()
	}
}
