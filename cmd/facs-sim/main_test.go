package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"facsp/internal/experiment"
	"facsp/internal/scenario"
)

func TestRunUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "99"}); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRunUnknownScenario(t *testing.T) {
	if err := run([]string{"-scenario", "no-such-scenario"}); err == nil {
		t.Error("unknown scenario accepted")
	}
}

func TestRunUnknownMetric(t *testing.T) {
	if err := run([]string{"-scenario", "flash-crowd", "-metric", "latency"}); err == nil {
		t.Error("unknown metric accepted")
	}
}

func TestRunRejectsConflictingModeFlags(t *testing.T) {
	// An explicitly requested figure must not be silently discarded by
	// -scenario, and -metric means nothing in figure mode.
	if err := run([]string{"-fig", "7", "-scenario", "highway"}); err == nil {
		t.Error("-fig with -scenario accepted")
	}
	if err := run([]string{"-fig", "drops", "-metric", "ratio"}); err == nil {
		t.Error("-metric without -scenario accepted")
	}
}

func TestRunScenarioFromBadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"schema": 1, "name": "bad", "capacity_bu": -1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scenario", path}); err == nil {
		t.Error("invalid scenario file accepted")
	}
}

func TestRunNamedScenarioWritesCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	path := filepath.Join(t.TempDir(), "flash.csv")
	err := run([]string{
		"-scenario", "flash-crowd",
		"-metric", "drops",
		"-loads", "8",
		"-reps", "2",
		"-no-chart",
		"-csv", path,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	for _, scheme := range []string{"FACS-P", "FACS", "SCC", "guard-channel", "adapt", "adapt-fuzzy", "optimal", "learned"} {
		if !strings.Contains(out, scheme) {
			t.Errorf("scenario CSV missing scheme %s:\n%s", scheme, out)
		}
	}
}

func TestRunScenarioFileMatchesEmbedded(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	// The same scenario run via the library name and via a JSON file on
	// disk must produce identical curves: files are first-class citizens.
	embedded, err := scenario.Load("stadium-hotspot")
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(embedded)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "stadium.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	opts := experiment.Options{Loads: []int{6}, Replications: 2, Workers: 4}
	fromName, err := experiment.RunScenario(embedded, opts)
	if err != nil {
		t.Fatal(err)
	}
	fromFile, err := loadScenarioArg(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := experiment.RunScenario(fromFile, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromName, got) {
		t.Error("file-loaded scenario curves differ from embedded scenario curves")
	}
}

func TestListScenarios(t *testing.T) {
	var buf bytes.Buffer
	if err := printScenarios(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range scenario.Names() {
		if !strings.Contains(out, name) {
			t.Errorf("-list-scenarios output missing %q:\n%s", name, out)
		}
	}
}

// TestDocCommentMatchesRegistries diffs this command's package
// documentation against the live registries: every figure id and every
// named scenario must be mentioned, so the usage text cannot drift from
// the code (the bug class this test was added for).
func TestDocCommentMatchesRegistries(t *testing.T) {
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(src[:bytes.Index(src, []byte("package main"))])
	for _, id := range experiment.FigureIDs() {
		if !strings.Contains(doc, id) {
			t.Errorf("facs-sim doc comment does not mention figure id %q", id)
		}
	}
	for _, name := range scenario.Names() {
		if !strings.Contains(doc, name) {
			t.Errorf("facs-sim doc comment does not mention scenario %q", name)
		}
	}
	for _, id := range experiment.SchemeIDs() {
		if !strings.Contains(doc, id) {
			t.Errorf("facs-sim doc comment does not mention scheme id %q", id)
		}
	}
	for _, flagName := range []string{
		"-scenario", "-list-scenarios", "-metric", "-fig", "-csv", "-workers", "-surface",
		"-generate-city", "-city", "-city-scheme", "-city-load", "-city-groups", "-city-workers",
		"-city-radius", "-city-seed", "-city-name", "-leaderboard", "-gate",
	} {
		if !strings.Contains(doc, flagName) {
			t.Errorf("facs-sim doc comment does not mention flag %q", flagName)
		}
	}
}

func TestRunBadLoads(t *testing.T) {
	if err := run([]string{"-fig", "10", "-loads", "x"}); err == nil {
		t.Error("bad loads accepted")
	}
}

func TestRunWritesCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "fig10.csv")
	err := run([]string{
		"-fig", "10",
		"-loads", "10,50",
		"-reps", "2",
		"-no-chart",
		"-csv", path,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	if !strings.HasPrefix(out, "series,x,y\n") {
		t.Errorf("CSV header missing:\n%s", out)
	}
	if !strings.Contains(out, "FACS-P (proposed)") {
		t.Errorf("CSV missing FACS-P rows:\n%s", out)
	}
	// 2 curves x 2 loads + header = 5 lines.
	if got := strings.Count(out, "\n"); got != 5 {
		t.Errorf("CSV has %d lines, want 5:\n%s", got, out)
	}
}

func TestGenerateCityEmitsValidScenario(t *testing.T) {
	var buf bytes.Buffer
	if err := generateCity(&buf, "", 0, 0); err != nil {
		t.Fatal(err)
	}
	s, err := scenario.FromJSON(buf.Bytes())
	if err != nil {
		t.Fatalf("generated city does not parse back: %v", err)
	}
	if s.Schema != scenario.SchemaVersion || s.Topology == nil {
		t.Errorf("generated city schema=%d topology=%v", s.Schema, s.Topology)
	}
	if err := generateCity(io.Discard, "", 1, 0); err == nil {
		t.Error("bad -city-radius accepted")
	}
}

func TestRunCityMode(t *testing.T) {
	var buf bytes.Buffer
	err := runCity(&buf, "metro-city", "guard", 4, 8, 2, 1, experiment.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"222 cells", "8 groups", "2 workers", "simulated calls/s", "class video"} {
		if !strings.Contains(out, want) {
			t.Errorf("city report missing %q:\n%s", want, out)
		}
	}
}

func TestRunCityRejectsWorkerOverflow(t *testing.T) {
	err := run([]string{"-city", "metro-city", "-city-groups", "4", "-city-workers", "9"})
	if err == nil {
		t.Fatal("9 workers over 4 groups accepted")
	}
	if !strings.Contains(err.Error(), "-city-workers") {
		t.Errorf("error %q does not name the flag", err)
	}
}

func TestRunCityRejectsSCCScheme(t *testing.T) {
	if err := run([]string{"-city", "metro-city", "-city-scheme", "scc", "-city-load", "2"}); err == nil {
		t.Error("network-level scc accepted for a sharded city run")
	}
}

func TestLeaderboardFlagValidation(t *testing.T) {
	if err := run([]string{"-gate", "1"}); err == nil {
		t.Error("-gate without -leaderboard accepted")
	}
	if err := run([]string{"-leaderboard", "-fig", "10"}); err == nil {
		t.Error("-leaderboard with -fig accepted")
	}
	if err := run([]string{"-leaderboard", "-city", "metro-city"}); err == nil {
		t.Error("-leaderboard with -city accepted")
	}
}

// TestRunLeaderboardsReportsEveryScenario drives the leaderboard mode at a
// reduced sweep and checks the report covers every ring scenario and every
// scheme, with the gate line present when gating is on.
func TestRunLeaderboardsReportsEveryScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	var buf bytes.Buffer
	opts := experiment.Options{Loads: []int{8}, Replications: 1, SurfaceResolution: 33}
	if err := runLeaderboards(&buf, opts, 50); err != nil {
		t.Fatalf("runLeaderboards: %v", err)
	}
	out := buf.String()
	for _, name := range experiment.RingScenarioNames() {
		if !strings.Contains(out, "scenario "+name) {
			t.Errorf("leaderboard report missing scenario %q:\n%s", name, out)
		}
	}
	for _, id := range experiment.SchemeIDs() {
		if !strings.Contains(out, id) {
			t.Errorf("leaderboard report missing scheme %q:\n%s", id, out)
		}
	}
	if !strings.Contains(out, "gate: optimal is a floor") {
		t.Errorf("leaderboard report missing gate line:\n%s", out)
	}
}

func TestCityModeExclusivity(t *testing.T) {
	if err := run([]string{"-city", "metro-city", "-fig", "10"}); err == nil {
		t.Error("-city with -fig accepted")
	}
	if err := run([]string{"-generate-city", "-scenario", "highway"}); err == nil {
		t.Error("-generate-city with -scenario accepted")
	}
	if err := run([]string{"-generate-city", "-city", "metro-city"}); err == nil {
		t.Error("-generate-city with -city accepted")
	}
}
