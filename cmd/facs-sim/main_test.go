package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseLoads(t *testing.T) {
	tests := []struct {
		in      string
		want    []int
		wantErr bool
	}{
		{in: "10,25,50", want: []int{10, 25, 50}},
		{in: " 5 , 10 ", want: []int{5, 10}},
		{in: "100", want: []int{100}},
		{in: "", wantErr: true},
		{in: "a,b", wantErr: true},
		{in: "-5", wantErr: true},
	}
	for _, tt := range tests {
		got, err := parseLoads(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseLoads(%q) error = %v", tt.in, err)
			continue
		}
		if err != nil {
			continue
		}
		if len(got) != len(tt.want) {
			t.Errorf("parseLoads(%q) = %v, want %v", tt.in, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("parseLoads(%q)[%d] = %d, want %d", tt.in, i, got[i], tt.want[i])
			}
		}
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "99"}); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRunBadLoads(t *testing.T) {
	if err := run([]string{"-fig", "10", "-loads", "x"}); err == nil {
		t.Error("bad loads accepted")
	}
}

func TestRunWritesCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "fig10.csv")
	err := run([]string{
		"-fig", "10",
		"-loads", "10,50",
		"-reps", "2",
		"-no-chart",
		"-csv", path,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	if !strings.HasPrefix(out, "series,x,y\n") {
		t.Errorf("CSV header missing:\n%s", out)
	}
	if !strings.Contains(out, "FACS-P (proposed)") {
		t.Errorf("CSV missing FACS-P rows:\n%s", out)
	}
	// 2 curves x 2 loads + header = 5 lines.
	if got := strings.Count(out, "\n"); got != 5 {
		t.Errorf("CSV has %d lines, want 5:\n%s", got, out)
	}
}
