// Command facs-train fits the learned admission controller's network
// (internal/learned) and regenerates its committed weights artifact.
//
// Usage:
//
//	facs-train -out internal/learned/weights.go
//	facs-train -loads 20,40,60,80,100 -reps 3 -epochs 40 -lr 0.05
//
// The fitting run is policy distillation on sweep traces: the paper's
// homogeneous cellular sweep (cellsim) is driven by the value-iteration
// optimal policy (internal/optimal) across the configured load points and
// replications, every admission decision the teacher makes is recorded as
// a labelled sample — occupancy fraction, bandwidth fraction, handoff flag
// against the teacher's verdict — and the two-hidden-layer net is fitted
// to the trace with seeded SGD on binary cross-entropy. Everything is
// deterministic for a given flag set (rng.Substream per shard, seeded
// shuffles), so the generated file is reproducible byte for byte.
//
// The output is Go source (gofmt-clean, with a "Code generated" header and
// the learned.WeightsVersion constant) meant to be committed; builds never
// train.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"go/format"
	"os"
	"strconv"
	"strings"

	"facsp/internal/cac"
	"facsp/internal/cellsim"
	"facsp/internal/core"
	"facsp/internal/hexgrid"
	"facsp/internal/learned"
	"facsp/internal/optimal"
	"facsp/internal/rng"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "facs-train:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("facs-train", flag.ContinueOnError)
	var (
		outPath  = fs.String("out", "internal/learned/weights.go", "generated weights artifact path")
		loads    = fs.String("loads", "20,40,60,80,100", "comma-separated sweep load points the teacher traces")
		reps     = fs.Int("reps", 3, "replications (seeds) per load point")
		capacity = fs.Float64("capacity", core.CounterMax, "cell capacity in BU for the teacher model")
		epochs   = fs.Int("epochs", 40, "SGD epochs over the trace")
		lr       = fs.Float64("lr", 0.05, "SGD learning rate")
		seed     = fs.Uint64("seed", 1, "base seed for traces, init and shuffles")
		version  = fs.Int("version", learned.WeightsVersion+1, "WeightsVersion to stamp into the artifact")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	loadPts, err := parseLoads(*loads)
	if err != nil {
		return err
	}
	if *reps < 1 {
		return fmt.Errorf("need at least one replication, got %d", *reps)
	}

	samples, err := collect(loadPts, *reps, *capacity, *seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "facs-train: %d samples from %d load points x %d reps (teacher: optimal policy at %.0f BU)\n",
		len(samples), len(loadPts), *reps, *capacity)

	net, stats := learned.Train(samples, *epochs, *lr, *seed)
	fmt.Fprintf(out, "facs-train: %d epochs, final loss %.4f, teacher agreement %.2f%%\n",
		stats.Epochs, stats.FinalLoss, 100*stats.Accuracy)

	src, err := render(net, stats, *version, strings.Join(args, " "))
	if err != nil {
		return err
	}
	if err := os.WriteFile(*outPath, src, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "facs-train: wrote %s (WeightsVersion %d)\n", *outPath, *version)
	return nil
}

func parseLoads(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad load point %q", p)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no load points")
	}
	return out, nil
}

// recorder wraps the teacher controller and logs every decision it makes
// as a training sample.
type recorder struct {
	inner    cac.Controller
	capacity float64
	sink     *[]learned.Sample
}

func (r *recorder) Admit(req cac.Request) cac.Decision {
	occ := r.inner.Occupancy()
	d := r.inner.Admit(req)
	if req.Validate() == nil {
		h := 0.0
		if req.Handoff {
			h = 1
		}
		*r.sink = append(*r.sink, learned.Sample{
			Occ:     occ / r.capacity,
			BW:      req.Bandwidth / r.capacity,
			Handoff: h,
			Admit:   d.Accept,
		})
	}
	return d
}

func (r *recorder) Release(req cac.Request) error { return r.inner.Release(req) }
func (r *recorder) Occupancy() float64            { return r.inner.Occupancy() }
func (r *recorder) Capacity() float64             { return r.inner.Capacity() }

// collect drives the homogeneous sweep with the optimal policy and
// returns the recorded decision trace. Runs are sequential, so the sample
// order — and therefore the artifact — is deterministic.
func collect(loads []int, reps int, capacity float64, seed uint64) ([]learned.Sample, error) {
	var samples []learned.Sample
	for li, load := range loads {
		for rep := 0; rep < reps; rep++ {
			cfg := cellsim.DefaultConfig(load, rng.Substream(seed, uint64(li), uint64(rep)))
			admitter := cellsim.NewPerCell(func(hexgrid.Coord) cac.Controller {
				teacher, err := optimal.ForCapacity(capacity)
				if err != nil {
					panic("facs-train: " + err.Error())
				}
				return &recorder{inner: teacher, capacity: capacity, sink: &samples}
			})
			sim, err := cellsim.New(cfg, admitter)
			if err != nil {
				return nil, err
			}
			if _, err := sim.Run(); err != nil {
				return nil, err
			}
		}
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("trace produced no samples")
	}
	return samples, nil
}

// render emits the weights artifact as gofmt-clean Go source.
func render(n learned.Net, stats learned.TrainStats, version int, argv string) ([]byte, error) {
	var b bytes.Buffer
	fmt.Fprintf(&b, "// Code generated by facs-train; DO NOT EDIT.\n")
	fmt.Fprintf(&b, "//\n")
	if argv == "" {
		fmt.Fprintf(&b, "// Regenerate: go run ./cmd/facs-train\n")
	} else {
		fmt.Fprintf(&b, "// Regenerate: go run ./cmd/facs-train %s\n", argv)
	}
	fmt.Fprintf(&b, "//\n")
	fmt.Fprintf(&b, "// Fitted on %d teacher decisions, %d epochs, final BCE %.4f,\n", stats.Samples, stats.Epochs, stats.FinalLoss)
	fmt.Fprintf(&b, "// teacher agreement %.2f%%.\n", 100*stats.Accuracy)
	fmt.Fprintf(&b, "\npackage learned\n\n")
	fmt.Fprintf(&b, "// WeightsVersion identifies the committed weights artifact; cmd/facs-train\n")
	fmt.Fprintf(&b, "// bumps it when the training recipe changes incompatibly.\n")
	fmt.Fprintf(&b, "const WeightsVersion = %d\n\n", version)
	fmt.Fprintf(&b, "// DefaultWeights is the fitted admission network.\n")
	fmt.Fprintf(&b, "var DefaultWeights = Net{\n")
	fmt.Fprintf(&b, "\tW1: [Hidden1][Features]float64{\n")
	for _, row := range n.W1 {
		fmt.Fprintf(&b, "\t\t{%s},\n", joinFloats(row[:]))
	}
	fmt.Fprintf(&b, "\t},\n")
	fmt.Fprintf(&b, "\tB1: [Hidden1]float64{%s},\n", joinFloats(n.B1[:]))
	fmt.Fprintf(&b, "\tW2: [Hidden2][Hidden1]float64{\n")
	for _, row := range n.W2 {
		fmt.Fprintf(&b, "\t\t{%s},\n", joinFloats(row[:]))
	}
	fmt.Fprintf(&b, "\t},\n")
	fmt.Fprintf(&b, "\tB2: [Hidden2]float64{%s},\n", joinFloats(n.B2[:]))
	fmt.Fprintf(&b, "\tW3: [Hidden2]float64{%s},\n", joinFloats(n.W3[:]))
	fmt.Fprintf(&b, "\tB3: %s,\n", formatFloat(n.B3))
	fmt.Fprintf(&b, "}\n")
	return format.Source(b.Bytes())
}

func joinFloats(vs []float64) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = formatFloat(v)
	}
	return strings.Join(parts, ", ")
}

// formatFloat renders v with the shortest representation that round-trips
// exactly, as a valid Go expression.
func formatFloat(v float64) string {
	s := strconv.FormatFloat(v, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0" // keep it a float literal even for integral values
	}
	return s
}
