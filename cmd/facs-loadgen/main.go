// Command facs-loadgen drives a facs-server daemon with an open-loop
// call workload and reports sustained admissions/sec plus p50/p99
// admission latency.
//
// Unlike facs-client (a closed-loop mini-benchmark whose next request
// waits for the previous response), facs-loadgen schedules every arrival
// in advance from a scenario-library rate profile — the flash-crowd 8x
// spike or the diurnal city curve, time-scaled to -duration — so an
// overloaded daemon keeps receiving the full offered load and its
// shedding behaviour and tail latency become visible. Latency is
// measured from each request's scheduled send time (coordinated-omission
// corrected).
//
// Usage:
//
//	facs-loadgen -addr 127.0.0.1:4077 -profile flash-crowd -duration 10s -rate 2000
//	facs-loadgen -profile diurnal -cells 7 -minbu-frac 0.5   # exercise degraded admissions
//
// The exit status is non-zero if any request failed at the transport or
// protocol level (shed "overloaded" responses are expected under
// overload and are reported separately, not counted as errors).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"facsp/internal/loadgen"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "facs-loadgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("facs-loadgen", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:4077", "daemon address")
		profile   = fs.String("profile", "flash-crowd", "load shape: "+strings.Join(loadgen.Profiles(), ", "))
		duration  = fs.Duration("duration", 10*time.Second, "arrival window the profile is scaled to")
		rate      = fs.Float64("rate", 500, "peak arrival rate in requests/second")
		conns     = fs.Int("conns", 4, "concurrent client sessions")
		cells     = fs.Int("cells", 1, "spread arrivals over daemon cells [0,cells)")
		seed      = fs.Uint64("seed", 1, "workload seed")
		hold      = fs.Duration("hold", 2*time.Second, "mean holding time of accepted calls")
		minBUFrac = fs.Float64("minbu-frac", 0, "fraction of voice/video admits carrying a degraded min_bu floor")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	res, err := loadgen.Run(loadgen.Config{
		Addr:      *addr,
		Profile:   *profile,
		Duration:  *duration,
		Rate:      *rate,
		Conns:     *conns,
		Cells:     *cells,
		Seed:      *seed,
		HoldMean:  *hold,
		MinBUFrac: *minBUFrac,
	})
	if err != nil {
		return err
	}
	fmt.Println(res)
	if res.Errors > 0 {
		return fmt.Errorf("%d request(s) failed", res.Errors)
	}
	return nil
}
