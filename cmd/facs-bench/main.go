// Command facs-bench runs the repository's performance suite
// (internal/perf) and emits the machine-readable BENCH.json artifact: one
// record per benchmark spec with ns/op, allocs/op, bytes/op and — for the
// figure/scenario sweeps — simulated calls per wall-clock second, plus
// the environment the numbers were measured in.
//
// Usage:
//
//	facs-bench                                # smoke suite -> BENCH.json
//	facs-bench -suite full                    # every spec
//	facs-bench -filter '^sweep/'              # specs matching a regexp
//	facs-bench -benchtime 2s                  # longer per-spec budget
//	facs-bench -loads 50,100 -reps 3          # heavier sweep workload
//	facs-bench -out -                         # write the report to stdout
//	facs-bench -baseline BENCH_baseline.json  # CI regression gate
//
// The regression gate (-baseline) compares each measured spec's ns/op
// against the committed baseline and exits non-zero when any spec is more
// than -max-regress percent slower, or when a baseline spec was silently
// dropped. Intentional regressions land by regenerating the baseline in
// the same change; to bypass the gate once (e.g. a known-noisy runner),
// set BENCH_GATE=off in the environment — CI wires that to the
// bench-override PR label. See the Performance section of EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"facsp/internal/perf"
	"facsp/internal/simflag"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "facs-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("facs-bench", flag.ContinueOnError)
	var (
		suite      = fs.String("suite", "smoke", "spec suite: smoke (the reduced CI set) or full")
		filter     = fs.String("filter", "", "only run specs matching this regexp")
		benchtime  = fs.Duration("benchtime", time.Second, "minimum timed duration per spec")
		loads      = fs.String("loads", "", "comma-separated sweep x axis, e.g. 50,100 (default: 100)")
		reps       = fs.Int("reps", 1, "sweep replications (seeds) per load point")
		workers    = fs.Int("workers", 1, "sweep shard workers (1 keeps ns/op contention-free)")
		surface    = fs.Int("surface", 0, "resolution of the /surface sweep variants (0 = the default resolution)")
		out        = fs.String("out", "BENCH.json", "report path ('-' for stdout)")
		baseline   = fs.String("baseline", "", "gate: compare ns/op against this baseline report")
		maxRegress = fs.Float64("max-regress", 30, "gate: fail when a spec is more than this percent slower")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	if *benchtime <= 0 {
		return fmt.Errorf("-benchtime %v: must be positive", *benchtime)
	}
	if *maxRegress < 0 {
		return fmt.Errorf("-max-regress %v: must be non-negative", *maxRegress)
	}
	// The sweep flags share facs-sim's validation (internal/simflag), so a
	// bad -loads or -reps fails here instead of deep inside a shard.
	opts, err := simflag.SweepOptions(*loads, *reps, *workers, *surface, 0)
	if err != nil {
		return err
	}
	sc := perf.SweepConfig{
		Loads:        opts.Loads,
		Replications: opts.Replications,
		Workers:      opts.Workers,
		Surface:      opts.SurfaceResolution,
	}

	specs := perf.Registry(sc)
	switch *suite {
	case "full":
	case "smoke":
		var smoke []perf.Spec
		for _, s := range specs {
			if s.Smoke {
				smoke = append(smoke, s)
			}
		}
		specs = smoke
	default:
		return fmt.Errorf("unknown suite %q (have smoke, full)", *suite)
	}
	if *filter != "" {
		if specs, err = perf.Filter(specs, *filter); err != nil {
			return err
		}
	}
	if len(specs) == 0 {
		return fmt.Errorf("no specs selected")
	}

	results := make([]perf.Result, 0, len(specs))
	for _, s := range specs {
		r, err := s.Measure(*benchtime)
		if err != nil {
			return err
		}
		line := fmt.Sprintf("%-32s %12.0f ns/op %10.1f allocs/op", r.Name, r.NsPerOp, r.AllocsPerOp)
		if r.SimCallsPerSec > 0 {
			line += fmt.Sprintf(" %14.0f simcalls/s", r.SimCallsPerSec)
		}
		if v, ok := r.Extra["admits_per_sec"]; ok {
			line += fmt.Sprintf(" %8.0f admits/s p50=%s p99=%s", v,
				time.Duration(r.Extra["p50_ns"]).Round(time.Microsecond),
				time.Duration(r.Extra["p99_ns"]).Round(time.Microsecond))
		}
		fmt.Fprintln(os.Stderr, line)
		results = append(results, r)
	}

	report := perf.NewReport(*suite, results)
	if err := report.WriteFile(*out); err != nil {
		return err
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "facs-bench: wrote %s (%d specs)\n", *out, len(results))
	}

	if *baseline == "" {
		return nil
	}
	return gate(*baseline, report, *maxRegress/100)
}

// gate compares the fresh report against the committed baseline and
// returns an error on regression, unless BENCH_GATE=off. The ns/op
// comparison is normalized by the median ratio across the micro/ specs
// (perf.Compare's Scale; all specs only as a fallback), so a baseline
// measured on different hardware gates relative regressions instead of
// the hardware gap; the allocs/op comparison is absolute and travels
// between machines unchanged.
func gate(baselinePath string, current *perf.Report, maxRegress float64) error {
	base, err := perf.ReadReport(baselinePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	cmp := perf.Compare(base, current, maxRegress)
	fmt.Fprintf(os.Stderr, "facs-bench: hardware scale vs baseline: %.2fx (median ns/op ratio)\n", cmp.Scale)
	for _, m := range cmp.Missing {
		fmt.Fprintf(os.Stderr, "facs-bench: baseline spec %q was not measured\n", m)
	}
	for _, r := range cmp.Regressions {
		fmt.Fprintf(os.Stderr, "facs-bench: REGRESSION %s: %.0f -> %.0f %s (%.2fx, tolerance %.2fx)\n",
			r.Name, r.Baseline, r.Current, r.Metric, r.Ratio, 1+maxRegress)
	}
	if len(cmp.Regressions) == 0 && len(cmp.Missing) == 0 {
		fmt.Fprintf(os.Stderr, "facs-bench: gate clean vs %s (%d specs within %.0f%%)\n",
			baselinePath, len(base.Results), maxRegress*100)
		return nil
	}
	if os.Getenv("BENCH_GATE") == "off" {
		fmt.Fprintln(os.Stderr, "facs-bench: BENCH_GATE=off — reporting only, not failing")
		return nil
	}
	return fmt.Errorf("%d regression(s), %d missing baseline spec(s) vs %s",
		len(cmp.Regressions), len(cmp.Missing), baselinePath)
}
