package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"facsp/internal/perf"
)

func TestRunRejectsBadFlags(t *testing.T) {
	for _, tt := range []struct {
		name string
		args []string
		want string
	}{
		{name: "bad-suite", args: []string{"-suite", "nope"}, want: "unknown suite"},
		{name: "bad-loads", args: []string{"-loads", "10,x"}, want: "bad load"},
		{name: "negative-load", args: []string{"-loads", "-5"}, want: "negative load"},
		{name: "zero-reps", args: []string{"-reps", "0"}, want: "-reps"},
		{name: "negative-workers", args: []string{"-workers", "-1"}, want: "-workers"},
		{name: "surface-one", args: []string{"-surface", "1"}, want: "-surface"},
		{name: "bad-benchtime", args: []string{"-benchtime", "-1s"}, want: "-benchtime"},
		{name: "bad-filter", args: []string{"-filter", "["}, want: "bad filter"},
		{name: "positional", args: []string{"extra"}, want: "unexpected arguments"},
		{name: "no-specs", args: []string{"-filter", "^matches-nothing$"}, want: "no specs"},
	} {
		t.Run(tt.name, func(t *testing.T) {
			err := run(tt.args)
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("run(%v) error = %v, want mention of %q", tt.args, err, tt.want)
			}
		})
	}
}

// TestRunEmitsValidReport measures one cheap spec with a tiny time budget
// and checks the emitted BENCH.json parses and carries the environment.
func TestRunEmitsValidReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH.json")
	err := run([]string{
		"-suite", "full",
		"-filter", "^micro/des/schedule$",
		"-benchtime", "10ms",
		"-out", out,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := perf.ReadReport(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 || rep.Results[0].Name != "micro/des/schedule" {
		t.Fatalf("report results = %+v", rep.Results)
	}
	if rep.Results[0].NsPerOp <= 0 || rep.GoVersion == "" || rep.CPUs < 1 {
		t.Errorf("implausible report: %+v", rep)
	}
}

// TestGateFailsOnRegression pins the CI contract: a spec measured
// >max-regress slower than its baseline (relative to the suite's median
// hardware scale) makes the command fail, and BENCH_GATE=off downgrades
// the failure to a report.
func TestGateFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH.json")
	// Three cheap micro specs: enough peers for the median normalization
	// to anchor on the two honest ones.
	args := []string{
		"-suite", "full",
		"-filter", "^micro/(des/schedule|flc1/exact|flc2/exact)$",
		"-benchtime", "50ms",
		"-out", out,
	}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	rep, err := perf.ReadReport(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("measured %d specs, want 3", len(rep.Results))
	}
	clone := func() *perf.Report {
		c := *rep
		c.Results = append([]perf.Result(nil), rep.Results...)
		return &c
	}

	// The measurement gating itself passes. Every gate invocation below
	// re-measures, so this assertion uses a widened tolerance: it checks
	// the self-consistency plumbing, not measurement stability at a small
	// time budget.
	baseline := filepath.Join(dir, "BENCH_baseline.json")
	writeReport(t, baseline, rep)
	if err := run(append(args, "-baseline", baseline, "-max-regress", "100")); err != nil {
		t.Fatalf("gate failed against its own measurement: %v", err)
	}

	// An injected 2x slowdown of one spec (its baseline claims it used to
	// run twice as fast as measured): certain failure.
	fast := clone()
	fast.Results[0].NsPerOp /= 2
	writeReport(t, baseline, fast)
	err = run(append(args, "-baseline", baseline))
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("gate error = %v, want a regression failure", err)
	}

	// The documented override downgrades the same comparison.
	t.Setenv("BENCH_GATE", "off")
	if err := run(append(args, "-baseline", baseline)); err != nil {
		t.Fatalf("BENCH_GATE=off still failed: %v", err)
	}
	t.Setenv("BENCH_GATE", "")

	// An allocs/op explosion fails even at identical ns/op: the
	// hardware-independent half of the gate.
	lean := clone()
	lean.Results[1].AllocsPerOp = 0
	writeReport(t, baseline, lean)
	if rep.Results[1].AllocsPerOp > 2 { // flc1/exact allocates ~6/op
		err = run(append(args, "-baseline", baseline))
		if err == nil || !strings.Contains(err.Error(), "regression") {
			t.Fatalf("gate error = %v, want an allocs/op regression failure", err)
		}
	}

	// Dropping a gated spec from the measurement must also fail.
	gone := clone()
	gone.Results = append(gone.Results, perf.Result{Name: "micro/never-measured", NsPerOp: 1})
	writeReport(t, baseline, gone)
	err = run(append(args, "-baseline", baseline))
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("gate error = %v, want a missing-spec failure", err)
	}
}

func writeReport(t *testing.T, path string, r *perf.Report) {
	t.Helper()
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}
