// Command facs-server runs a base-station admission daemon: a TCP server
// answering wire-protocol (JSON lines) admission queries against a chosen
// call-admission scheme.
//
// Usage:
//
//	facs-server -addr :4077 -scheme facsp
//	facs-server -scheme guard -capacity 40 -guard 8
//	facs-server -scheme adapt            # adaptive bandwidth degradation
//	facs-server -scheme adapt-fuzzy      # degradation gated by the fuzzy pipeline
//	facs-server -cells 7 -queue 512      # 7-cell daemon, deeper per-cell queues
//	facs-server -surface-tiers default   # hotness-adaptive tiered decision surfaces
//
// Schemes: facsp (FACS-P, the paper's proposal), facs (the previous fuzzy
// system), guard (cutoff priority), sharing (complete sharing), adapt and
// adapt-fuzzy (adaptive bandwidth degradation, internal/adapt), optimal
// (the value-iteration threshold policy, internal/optimal) and learned
// (the table-compiled distilled controller, internal/learned).
//
// The daemon serves -cells independent cells, each with its own admission
// controller of the chosen scheme and its own worker goroutine; requests
// address a cell with the wire "cell" field. Every cell's pending-request
// queue is bounded at -queue entries: a request arriving at a full queue
// is shed immediately with an "overloaded" error response instead of
// growing server memory without limit.
//
// # Wire protocol
//
// One JSON object per line in each direction (internal/wire, version 1).
// Requests carry "v" (must be 1) and "op": "admit", "release" or "status".
// An optional "cell" field addresses one cell of a multi-cell daemon by
// index; when absent the request targets cell 0, so single-cell clients
// predating the field keep working unchanged. Responses echo the cell in
// "cell" (omitted for cell 0).
//
// Admit asks the cell to admit connection "id" of service class "class"
// ("text", "voice" or "video"; the class fixes the requested bandwidth at
// 1/5/10 BU). Optional fields: "speed_kmh" and "angle_deg" feed the fuzzy
// schemes' mobility inputs, "handoff" marks an on-going call entering from
// a neighbour cell (prioritised by facsp and the adapt schemes),
// "priority" is the requesting-connection priority level, and "min_bu" is
// the lowest bandwidth the connection tolerates when served by an adaptive
// scheme:
//
//	-> {"v":1,"op":"admit","id":1,"class":"voice","speed_kmh":60,"angle_deg":10}
//	<- {"v":1,"ok":true,"accept":true,"score":0.62,"outcome":"A","occupancy":5,"capacity":40,"scheme":"FACS-P"}
//
// or, against an adapt cell already full with four on-going videos (each
// squeezed one ladder step, 10 → 7 BU, freeing 12 BU for the 10 BU grant):
//
//	-> {"v":1,"op":"admit","id":5,"class":"video","handoff":true,"min_bu":5}
//	<- {"v":1,"ok":true,"accept":true,"score":1,"outcome":"degraded-others","allocated":10,"occupancy":38,"capacity":40,"scheme":"adapt"}
//
// On an accepted admit, "allocated" is the bandwidth actually granted:
// adaptive schemes may grant less than the class bandwidth (a degraded
// admission) and may later change it mid-call; when absent, the full class
// bandwidth was granted.
//
// Release returns the bandwidth of a connection previously admitted on
// this session; status reports the cell state without changing it. Both
// answer with the shared response fields only:
//
//	-> {"v":1,"op":"release","id":1,"class":"voice"}
//	<- {"v":1,"ok":true,"occupancy":0,"capacity":40,"scheme":"FACS-P"}
//	-> {"v":1,"op":"status"}
//	<- {"v":1,"ok":true,"occupancy":0,"capacity":40,"scheme":"FACS-P"}
//
// Every response carries "occupancy", "capacity" and "scheme", reporting
// the state its own operation produced (the daemon serialises each cell's
// mutations through one worker, so the numbers are exact, not racy
// read-afters). Errors — an unknown op, class or cell, a bad version, a
// duplicate admit, a release of a connection not admitted on the session —
// answer with "ok":false and the message in "err":
//
//	<- {"v":1,"ok":false,"err":"bsd: connection 7 not admitted on this session","occupancy":0,"capacity":40,"scheme":"FACS-P"}
//
// A request shed because its cell's bounded queue was full additionally
// carries the machine-readable "code":"overloaded" so load generators and
// neighbour cells can tell backpressure from protocol bugs; the request
// had no effect and may be retried:
//
//	<- {"v":1,"ok":false,"err":"bsd: cell 0 overloaded: request queue full","code":"overloaded","occupancy":37,"capacity":40,"scheme":"FACS-P"}
//
// A malformed line (unparseable JSON, oversized line) is answered once
// with an error reply, then the session is closed. A disconnecting client
// automatically releases every bandwidth unit it holds, so crashed
// handsets cannot leak cell capacity.
//
// # Observability
//
// -metrics starts an HTTP observability listener on a second address
// (off by default):
//
//	facs-server -addr :4077 -metrics 127.0.0.1:4092
//
// GET /metrics serves Prometheus text exposition: per-cell admission
// counters (facs_admits_total, facs_blocks_total, facs_drops_total,
// labelled by cell and class), facs_shed_total, the occupancy/capacity/
// degradation gauges, the facs_hotness expdecay demand gauge and the
// process-wide decision-surface cache counters. GET /hotcells serves a
// JSON ranking of the cells by recent admission demand, hottest first
// (?n=K limits it to the K hottest). -hotness-halflife sets the decay
// half-life of the demand estimate. The counters live in the cell
// workers' hot path as plain atomic adds, so scraping never blocks or
// slows admission.
//
// -surface-tiers enables hotness-adaptive tiered decision surfaces for
// the fuzzy schemes (facsp, facs): cold cells share one coarse
// process-cached surface and hot cells are promoted to finer grids (or
// exact inference) as their hotness rate crosses the ladder's thresholds,
// with recompilation running asynchronously so admits never block. The
// value is "default" or an explicit ladder "res@minrate,..." such as
// "9@0,33@0.5,65@8" (resolution 0 = exact inference on the hottest tier).
// With tiering on, /metrics additionally serves facs_surface_tier (each
// cell's current tier, labelled by cell), facs_surface_tier_cells (the
// tier-occupancy histogram, labelled by tier) and the process-wide
// facs_surface_recompiles_total, facs_surface_recompiles_stale_total,
// facs_surface_tier_promotions_total and facs_surface_tier_demotions_total
// counters.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"facsp/internal/adapt"
	"facsp/internal/baseline"
	"facsp/internal/bsd"
	"facsp/internal/cac"
	"facsp/internal/core"
	"facsp/internal/learned"
	"facsp/internal/optimal"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "facs-server:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("facs-server", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:4077", "listen address")
		scheme   = fs.String("scheme", "facsp", "admission scheme: facsp, facs, guard, sharing, adapt, adapt-fuzzy, optimal, learned")
		capacity = fs.Float64("capacity", 40, "cell capacity in bandwidth units")
		guard    = fs.Float64("guard", 8, "guard band in BU (guard scheme only)")
		cells    = fs.Int("cells", 1, "number of independent cells the daemon serves")
		queue    = fs.Int("queue", bsd.DefaultQueueDepth, "per-cell bounded request queue depth")
		metrics  = fs.String("metrics", "", "HTTP observability listen address (/metrics, /hotcells); empty disables")
		halfLife = fs.Duration("hotness-halflife", bsd.DefaultHotnessHalfLife, "half-life of the per-cell hotness demand estimate")
		tiers    = fs.String("surface-tiers", "", `hotness-adaptive tiered decision surfaces: "default" or a ladder like "9@0,33@0.5,65@8" (fuzzy schemes only); empty disables`)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cells < 1 {
		return fmt.Errorf("need at least one cell, got %d", *cells)
	}

	var tiered *core.Tiered
	if *tiers != "" {
		if *scheme != "facsp" && *scheme != "facs" {
			return fmt.Errorf("-surface-tiers needs a fuzzy scheme (facsp or facs), got %q", *scheme)
		}
		tcfg, err := core.ParseTiers(*tiers)
		if err != nil {
			return err
		}
		// The ladder's rates are measured on the daemon's hotness axis.
		hl := *halfLife
		if hl <= 0 {
			hl = bsd.DefaultHotnessHalfLife
		}
		tcfg.HalfLife = hl.Seconds()
		if tiered, err = core.NewTiered(*cells, tcfg); err != nil {
			return err
		}
		defer tiered.Close()
	}

	ctrls := make([]cac.Controller, *cells)
	for i := range ctrls {
		var prov core.SurfaceProvider
		if tiered != nil {
			prov = tiered.Cell(i)
		}
		ctrl, err := buildController(*scheme, *capacity, *guard, prov)
		if err != nil {
			return err
		}
		ctrls[i] = ctrl
	}
	cfg := bsd.Config{Cells: ctrls, QueueDepth: *queue, HotnessHalfLife: *halfLife}
	if tiered != nil {
		cfg.Tiers = tiered
		cfg.TierInterval = time.Duration(tiered.Config().Interval * float64(time.Second))
	}
	srv, err := bsd.New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("facs-server: %d %s cell(s) (%.0f BU each) listening on %s\n",
		*cells, cac.Name(ctrls[0]), *capacity, ln.Addr())

	var mln net.Listener
	if *metrics != "" {
		mln, err = net.Listen("tcp", *metrics)
		if err != nil {
			_ = ln.Close()
			return fmt.Errorf("metrics listener: %w", err)
		}
		msrv := &http.Server{Handler: srv.MetricsHandler(), ReadHeaderTimeout: 5 * time.Second}
		go func() {
			if err := msrv.Serve(mln); err != nil && !errors.Is(err, net.ErrClosed) {
				fmt.Fprintln(os.Stderr, "facs-server: metrics:", err)
			}
		}()
		fmt.Printf("facs-server: metrics on http://%s/metrics\n", mln.Addr())
	}

	// Graceful shutdown on SIGINT/SIGTERM.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Println("facs-server: shutting down")
		if mln != nil {
			_ = mln.Close()
		}
		_ = srv.Close()
	}()

	if err := srv.Serve(ln); err != nil && !errors.Is(err, net.ErrClosed) {
		return err
	}
	return nil
}

func buildController(scheme string, capacity, guard float64, surfaces core.SurfaceProvider) (cac.Controller, error) {
	switch scheme {
	case "facsp":
		cfg := core.DefaultPConfig()
		cfg.Capacity = capacity
		cfg.Surfaces = surfaces
		return core.NewFACSP(cfg)
	case "facs":
		cfg := core.DefaultConfig()
		cfg.Capacity = capacity
		cfg.Surfaces = surfaces
		return core.NewFACS(cfg)
	case "guard":
		return baseline.NewGuardChannel(capacity, guard)
	case "sharing":
		return baseline.NewCompleteSharing(capacity)
	case "adapt":
		cfg := adapt.DefaultConfig()
		cfg.Capacity = capacity
		return adapt.New(cfg)
	case "adapt-fuzzy":
		cfg := adapt.DefaultConfig()
		cfg.Capacity = capacity
		return adapt.NewFuzzy(cfg, core.DefaultPConfig())
	case "optimal":
		return optimal.ForCapacity(capacity)
	case "learned":
		return learned.New(capacity)
	default:
		return nil, fmt.Errorf("unknown scheme %q (have facsp, facs, guard, sharing, adapt, adapt-fuzzy, optimal, learned)", scheme)
	}
}
