// Command facs-server runs a base-station admission daemon: a TCP server
// answering wire-protocol (JSON lines) admission queries against a chosen
// call-admission scheme.
//
// Usage:
//
//	facs-server -addr :4077 -scheme facsp
//	facs-server -scheme guard -capacity 40 -guard 8
//
// Protocol (one JSON object per line):
//
//	-> {"v":1,"op":"admit","id":1,"class":"voice","speed_kmh":60,"angle_deg":10}
//	<- {"v":1,"ok":true,"accept":true,"score":0.62,"outcome":"A","occupancy":5,"capacity":40,"scheme":"FACS-P"}
//	-> {"v":1,"op":"release","id":1,"class":"voice"}
//	-> {"v":1,"op":"status"}
//
// A disconnecting client automatically releases every bandwidth unit it
// holds, so crashed handsets cannot leak cell capacity.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"facsp/internal/baseline"
	"facsp/internal/bsd"
	"facsp/internal/cac"
	"facsp/internal/core"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "facs-server:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("facs-server", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:4077", "listen address")
		scheme   = fs.String("scheme", "facsp", "admission scheme: facsp, facs, guard, sharing")
		capacity = fs.Float64("capacity", 40, "cell capacity in bandwidth units")
		guard    = fs.Float64("guard", 8, "guard band in BU (guard scheme only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ctrl, err := buildController(*scheme, *capacity, *guard)
	if err != nil {
		return err
	}
	srv, err := bsd.NewServer(ctrl)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("facs-server: %s cell (%.0f BU) listening on %s\n", cac.Name(ctrl), *capacity, ln.Addr())

	// Graceful shutdown on SIGINT/SIGTERM.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Println("facs-server: shutting down")
		_ = srv.Close()
	}()

	if err := srv.Serve(ln); err != nil && !errors.Is(err, net.ErrClosed) {
		return err
	}
	return nil
}

func buildController(scheme string, capacity, guard float64) (cac.Controller, error) {
	switch scheme {
	case "facsp":
		cfg := core.DefaultPConfig()
		cfg.Capacity = capacity
		return core.NewFACSP(cfg)
	case "facs":
		cfg := core.DefaultConfig()
		cfg.Capacity = capacity
		return core.NewFACS(cfg)
	case "guard":
		return baseline.NewGuardChannel(capacity, guard)
	case "sharing":
		return baseline.NewCompleteSharing(capacity)
	default:
		return nil, fmt.Errorf("unknown scheme %q (have facsp, facs, guard, sharing)", scheme)
	}
}
