package main

import (
	"testing"

	"facsp/internal/cac"
)

func TestBuildController(t *testing.T) {
	tests := []struct {
		scheme  string
		want    string
		wantErr bool
	}{
		{scheme: "facsp", want: "FACS-P"},
		{scheme: "facs", want: "FACS"},
		{scheme: "guard", want: "guard-channel"},
		{scheme: "sharing", want: "complete-sharing"},
		{scheme: "adapt", want: "adapt"},
		{scheme: "adapt-fuzzy", want: "adapt-fuzzy"},
		{scheme: "optimal", want: "optimal"},
		{scheme: "learned", want: "learned"},
		{scheme: "mystery", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.scheme, func(t *testing.T) {
			ctrl, err := buildController(tt.scheme, 40, 8, nil)
			if (err != nil) != tt.wantErr {
				t.Fatalf("buildController error = %v, wantErr %v", err, tt.wantErr)
			}
			if err != nil {
				return
			}
			if got := cac.Name(ctrl); got != tt.want {
				t.Errorf("scheme name = %q, want %q", got, tt.want)
			}
			if got := ctrl.Capacity(); got != 40 {
				t.Errorf("capacity = %v", got)
			}
		})
	}
}

func TestBuildControllerInvalidParams(t *testing.T) {
	if _, err := buildController("facsp", -1, 0, nil); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, err := buildController("adapt", -1, 0, nil); err == nil {
		t.Error("negative adapt capacity accepted")
	}
	if _, err := buildController("guard", 40, 40, nil); err == nil {
		t.Error("guard == capacity accepted")
	}
}

func TestRunRejectsBadScheme(t *testing.T) {
	if err := run([]string{"-scheme", "nope", "-addr", "127.0.0.1:0"}); err == nil {
		t.Error("bad scheme accepted")
	}
}

func TestRunRejectsBadSurfaceTiers(t *testing.T) {
	// Tiering only applies to the schemes with a fuzzy pipeline behind a
	// SurfaceProvider hook.
	for _, scheme := range []string{"guard", "sharing", "adapt", "adapt-fuzzy"} {
		if err := run([]string{"-scheme", scheme, "-surface-tiers", "default", "-addr", "127.0.0.1:0"}); err == nil {
			t.Errorf("-surface-tiers with scheme %s accepted", scheme)
		}
	}
	// A malformed or invalid ladder fails before the listener opens.
	for _, ladder := range []string{"9", "x@0", "17@0,9@2", "9@1"} {
		if err := run([]string{"-surface-tiers", ladder, "-addr", "127.0.0.1:0"}); err == nil {
			t.Errorf("-surface-tiers %q accepted", ladder)
		}
	}
}
