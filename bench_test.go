package facsp

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus micro-benchmarks of the admission hot path.
//
//	go test -bench=. -benchmem
//
// The Table benchmarks measure evaluating the printed rule bases (Tables 1
// and 2) end to end; each Fig benchmark runs the figure's workload through
// the same harness cmd/facs-sim uses for the full curves (one reduced
// sweep per iteration, so relative scheme cost is directly visible).
// EXPERIMENTS.md records the regenerated curves themselves.

import (
	"testing"
	"time"

	"facsp/internal/cellsim"
	"facsp/internal/core"
	"facsp/internal/experiment"
	"facsp/internal/fuzzy"
)

// benchLoad is the per-iteration load for figure benchmarks: the upper
// end of the paper's x axis, where the schemes differ most.
const benchLoad = 100

func benchOpts() experiment.Options {
	return experiment.Options{Loads: []int{benchLoad}, Replications: 1, Workers: 1}
}

// BenchmarkTable1 measures one FLC1 inference: fuzzify (Sp, An, Sr),
// evaluate the 63 rules of Table 1, defuzzify Cv.
func BenchmarkTable1(b *testing.B) {
	flc1, err := core.NewFLC1()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := flc1.Infer(72.5, 33, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2 measures one FLC2 inference: fuzzify (Cv, Rq, Cs),
// evaluate the 27 rules of Table 2, defuzzify A/R.
func BenchmarkTable2(b *testing.B) {
	flc2, err := core.NewFLC2()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := flc2.Infer(0.7, 5, 22); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCurve runs one reduced figure sweep per iteration.
func benchCurve(b *testing.B, cfg experiment.ConfigFunc, factory experiment.AdmitterFactory) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := benchOpts()
		opts.BaseSeed = uint64(i)
		if _, err := experiment.RunCurve("bench", cfg, factory, experiment.AcceptedPct, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func singleCell(load int, seed uint64) cellsim.Config {
	c := cellsim.DefaultConfig(load, seed)
	c.NeighborRequests = 0
	return c
}

func homogeneous(load int, seed uint64) cellsim.Config {
	return cellsim.DefaultConfig(load, seed)
}

// BenchmarkFig7 regenerates Fig. 7's two curves (FACS vs SCC, single-cell
// set-up) at the heaviest load point.
func BenchmarkFig7(b *testing.B) {
	b.Run("FACS", func(b *testing.B) {
		benchCurve(b, singleCell, experiment.FACSFactory())
	})
	b.Run("SCC", func(b *testing.B) {
		benchCurve(b, singleCell, experiment.SCCFactory())
	})
}

// BenchmarkFig8 regenerates Fig. 8's per-speed workloads (FACS-P).
func BenchmarkFig8(b *testing.B) {
	for _, sp := range []float64{4, 10, 30, 60} {
		sp := sp
		b.Run("speed="+itoa(int(sp)), func(b *testing.B) {
			cfg := func(load int, seed uint64) cellsim.Config {
				c := singleCell(load, seed)
				c.Speed = cellsim.Fixed(sp)
				return c
			}
			benchCurve(b, cfg, experiment.FACSPFactory())
		})
	}
}

// BenchmarkFig9 regenerates Fig. 9's per-angle workloads (FACS-P, static
// decision-level mode).
func BenchmarkFig9(b *testing.B) {
	for _, an := range []float64{0, 30, 50, 60, 90} {
		an := an
		b.Run("angle="+itoa(int(an)), func(b *testing.B) {
			cfg := func(load int, seed uint64) cellsim.Config {
				c := singleCell(load, seed)
				c.Angle = cellsim.Fixed(an)
				c.Static = true
				return c
			}
			benchCurve(b, cfg, experiment.FACSPFactory())
		})
	}
}

// BenchmarkFig10 regenerates Fig. 10's two curves (FACS-P vs FACS,
// homogeneous network).
func BenchmarkFig10(b *testing.B) {
	b.Run("FACS-P", func(b *testing.B) {
		benchCurve(b, homogeneous, experiment.FACSPFactory())
	})
	b.Run("FACS", func(b *testing.B) {
		benchCurve(b, homogeneous, experiment.FACSFactory())
	})
}

// BenchmarkSurfaceTable1 measures one FLC1 lookup on the precomputed
// decision surface — compare with BenchmarkTable1 for the exact-inference
// cost it replaces.
func BenchmarkSurfaceTable1(b *testing.B) {
	flc1, err := core.NewFLC1()
	if err != nil {
		b.Fatal(err)
	}
	s, err := fuzzy.NewSurface(flc1, fuzzy.DefaultSurfaceResolution)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Infer(72.5, 33, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSurfaceTable2 is BenchmarkTable2 on the precomputed surface.
func BenchmarkSurfaceTable2(b *testing.B) {
	flc2, err := core.NewFLC2()
	if err != nil {
		b.Fatal(err)
	}
	s, err := fuzzy.NewSurface(flc2, fuzzy.DefaultSurfaceResolution)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Infer(0.7, 5, 22); err != nil {
			b.Fatal(err)
		}
	}
}

// admitLoop is the shared Admit/Release measurement loop.
func admitLoop(b *testing.B, ctrl Controller, req Request) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := ctrl.Admit(req); d.Accept {
			if err := ctrl.Release(req); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAdmit measures the end-to-end admission hot path (FLC1 + FLC2 +
// bookkeeping) for each controller, the per-decision cost a deployment
// would see. The surface variants answer from the precomputed decision
// surfaces (WithSurfaceCache); the acceptance bar for this repository is
// surface-cached Admit at least 5x faster than exact inference (see
// TestSurfaceAdmitSpeedup for the enforced check).
func BenchmarkAdmit(b *testing.B) {
	b.Run("FACS/surface", func(b *testing.B) {
		ctrl, err := NewFACS(DefaultConfig().WithSurfaceCache(0))
		if err != nil {
			b.Fatal(err)
		}
		admitLoop(b, ctrl, NewRequest(Voice, 60, 15))
	})
	b.Run("FACS-P/surface", func(b *testing.B) {
		ctrl, err := NewFACSP(WithSurfaceCache(0))
		if err != nil {
			b.Fatal(err)
		}
		admitLoop(b, ctrl, NewRequest(Voice, 60, 15))
	})
	b.Run("FACS", func(b *testing.B) {
		ctrl, err := NewFACS()
		if err != nil {
			b.Fatal(err)
		}
		req := NewRequest(Voice, 60, 15)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if d := ctrl.Admit(req); d.Accept {
				if err := ctrl.Release(req); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("FACS-P", func(b *testing.B) {
		ctrl, err := NewFACSP()
		if err != nil {
			b.Fatal(err)
		}
		req := NewRequest(Voice, 60, 15)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if d := ctrl.Admit(req); d.Accept {
				if err := ctrl.Release(req); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("GuardChannel", func(b *testing.B) {
		ctrl, err := NewGuardChannel(40, 8)
		if err != nil {
			b.Fatal(err)
		}
		req := NewRequest(Voice, 60, 15)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if d := ctrl.Admit(req); d.Accept {
				if err := ctrl.Release(req); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkAblationDefuzzifier compares the centroid defuzzifier (the
// default) against the cheap height defuzzifier on the full admission
// path — the cost/fidelity trade discussed in DESIGN.md.
func BenchmarkAblationDefuzzifier(b *testing.B) {
	run := func(b *testing.B, cfg PConfig) {
		ctrl, err := NewFACSP(cfg)
		if err != nil {
			b.Fatal(err)
		}
		req := NewRequest(Video, 90, 30)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if d := ctrl.Admit(req); d.Accept {
				if err := ctrl.Release(req); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("centroid", func(b *testing.B) {
		run(b, DefaultPConfig())
	})
	b.Run("height", func(b *testing.B) {
		cfg := DefaultPConfig()
		cfg.Defuzzifier = fuzzy.Height{}
		run(b, cfg)
	})
}

// TestSurfaceAdmitSpeedup enforces the surface cache's reason to exist: the
// cached Admit hot path must be at least 5x faster than exact inference.
// Measured headroom is typically >20x, so the bar holds even on loaded CI
// machines.
func TestSurfaceAdmitSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	exact, err := NewFACSP()
	if err != nil {
		t.Fatal(err)
	}
	cached, err := NewFACSP(WithSurfaceCache(0))
	if err != nil {
		t.Fatal(err)
	}
	req := NewRequest(Voice, 60, 15)
	// Best of several windows: a single GC pause or scheduler stall landing
	// in one (sub-millisecond) cached window must not flip the verdict.
	measure := func(ctrl Controller, n, rounds int) time.Duration {
		// Warm up (and warm the shared surface cache) before timing.
		for i := 0; i < 50; i++ {
			if d := ctrl.Admit(req); d.Accept {
				if err := ctrl.Release(req); err != nil {
					t.Fatal(err)
				}
			}
		}
		best := time.Duration(0)
		for r := 0; r < rounds; r++ {
			start := time.Now()
			for i := 0; i < n; i++ {
				if d := ctrl.Admit(req); d.Accept {
					if err := ctrl.Release(req); err != nil {
						t.Fatal(err)
					}
				}
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		return best
	}
	const n = 5000
	exactD := measure(exact, n, 3)
	cachedD := measure(cached, n, 5)
	ratio := float64(exactD) / float64(cachedD)
	t.Logf("exact %v, surface-cached %v for %d admissions: %.1fx", exactD, cachedD, n, ratio)
	if ratio < 5 {
		t.Errorf("surface-cached Admit only %.1fx faster than exact inference, want >= 5x", ratio)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
