package facsp_test

// Benchmark harness: every benchmark is a named spec in the
// internal/perf registry — micro-benchmarks of the inference and
// admission hot paths plus one reduced sweep per scheme x figure — run
// here through perf.BenchSpec. cmd/facs-bench measures the same registry
// into BENCH.json for the CI regression gate, so `go test -bench .` and
// the gate can never drift apart.
//
//	go test -bench . -benchmem
//
// EXPERIMENTS.md ("Performance") records the tracked trajectory.

import (
	"testing"
	"time"

	"facsp"
	"facsp/internal/perf"
)

// BenchmarkPerf runs the full perf registry as sub-benchmarks, one per
// spec name (e.g. BenchmarkPerf/sweep/adapt-drops/surface).
func BenchmarkPerf(b *testing.B) {
	for _, s := range perf.Specs() {
		s := s
		b.Run(s.Name, func(b *testing.B) { perf.BenchSpec(b, s) })
	}
}

// TestSurfaceAdmitSpeedup enforces the surface cache's reason to exist: the
// cached Admit hot path must be at least 5x faster than exact inference.
// Measured headroom is typically >20x, so the bar holds even on loaded CI
// machines.
func TestSurfaceAdmitSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	exact, err := facsp.NewFACSP()
	if err != nil {
		t.Fatal(err)
	}
	cached, err := facsp.NewFACSP(facsp.WithSurfaceCache(0))
	if err != nil {
		t.Fatal(err)
	}
	req := facsp.NewRequest(facsp.Voice, 60, 15)
	// Best of several windows: a single GC pause or scheduler stall landing
	// in one (sub-millisecond) cached window must not flip the verdict.
	measure := func(ctrl facsp.Controller, n, rounds int) time.Duration {
		// Warm up (and warm the shared surface cache) before timing.
		for i := 0; i < 50; i++ {
			if d := ctrl.Admit(req); d.Accept {
				if err := ctrl.Release(req); err != nil {
					t.Fatal(err)
				}
			}
		}
		best := time.Duration(0)
		for r := 0; r < rounds; r++ {
			start := time.Now()
			for i := 0; i < n; i++ {
				if d := ctrl.Admit(req); d.Accept {
					if err := ctrl.Release(req); err != nil {
						t.Fatal(err)
					}
				}
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		return best
	}
	const n = 5000
	exactD := measure(exact, n, 3)
	cachedD := measure(cached, n, 5)
	ratio := float64(exactD) / float64(cachedD)
	t.Logf("exact %v, surface-cached %v for %d admissions: %.1fx", exactD, cachedD, n, ratio)
	if ratio < 5 {
		t.Errorf("surface-cached Admit only %.1fx faster than exact inference, want >= 5x", ratio)
	}
}
